"""Known-bad obliviousness snippets, analyzed with the fixture manifest.

Not a test module: pytest never imports this file.  ``tests/test_analysis.py``
parses the trailing ``EXPECT`` markers and asserts the analyzer reports
exactly those (rule, line) pairs and nothing else.
"""


class Engine:
    def secret_branch(self, block_id, out):
        if block_id > 16:  # EXPECT: OBL001
            out.append(1)
        return out

    def secret_branch_early_exit(self, block_id):
        if block_id > 16:  # EXPECT: OBL001
            return None
        return block_id

    def secret_ternary(self, block_id):
        return 1 if block_id > 0 else 0  # EXPECT: OBL001

    def secret_comp_filter(self, block_ids):
        total = 0
        for value in [b for b in block_ids if b > 0]:  # EXPECT: OBL001
            total += value
        return total

    def secret_while(self):
        remaining = len(self.stash)
        while remaining > 0:  # EXPECT: OBL002
            remaining -= 1
        return remaining

    def secret_sized_loop(self):
        total = 0
        for row in self.stash:  # EXPECT: OBL002
            total += row
        return total

    def secret_index(self, block_id, slots):
        leaf = self.position_map.get(block_id)
        return slots[leaf]  # EXPECT: OBL002

    def secret_recursion_level_skip(self, block_id, levels):
        # A recursion walk that skips upper levels for small ids leaks the
        # id through the number of observable path transfers.
        leaf = 0
        for level in levels:
            if block_id < level.num_blocks:  # EXPECT: OBL001
                break
            leaf = level.read_path(leaf)
        return leaf
