"""Known-good obliviousness snippets: same fixture manifest, zero findings."""


class Engine:
    def public_length_loop(self, block_ids):
        # Iterating a content-secret parameter is public: the trace length
        # is observable anyway.
        total = 0
        for _block_id in block_ids:
            total += 1
        return total

    def public_emptiness(self, block_ids):
        # len() of a content-secret parameter is public too.
        count = len(block_ids)
        while count > 0:
            count -= 1
        return count

    def arithmetic_select(self, block_id, table):
        # Branch-free select: the secret feeds arithmetic, never control flow.
        secret_bit = (block_id >> 3) & 1
        return table[0] * (1 - secret_bit) + table[1] * secret_bit

    def declassified_index(self, block_id, slots):
        # The path read reveals the leaf, so indexing with it afterwards is
        # public (declassifier in the fixture manifest).
        leaf = self.position_map.get(block_id)
        self.read_path(leaf)
        return slots[leaf]

    def sanitized_dispatch(self, block_ids):
        # isinstance() results never carry taint (type dispatch, not contents).
        if isinstance(block_ids, list):
            return len(block_ids)
        return 0
