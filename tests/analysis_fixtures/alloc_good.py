"""Known-good allocation snippets: in-place operations only in hot scopes."""


def hot_helper(stash_map, slots, occ):
    total = 0
    for key in stash_map:
        total += key
    occ[0] = total
    slots[total & 3] = total
    return total


class Driver:
    def run_trace(self, ids, scratch):
        setup = list(ids)  # setup allocation: allowed under "loops"
        for index in range(len(setup)):
            scratch[index] = setup[index] + 1
        return scratch
