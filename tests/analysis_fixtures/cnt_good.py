"""Known-good fused drivers: finally-guarded add_bulk flushes."""


class DirectFlushDriver:
    def _run_trace_fused(self, ids, counter):
        logical = 0
        try:
            for _block_id in ids:
                logical += 1
        finally:
            counter.add_bulk(logical)
        return logical


class ClosureFlushDriver:
    # The engine's sync_out pattern: the finally calls a local closure whose
    # body performs the add_bulk.
    def _run_trace_fused(self, ids, counter):
        logical = 0

        def sync_out():
            counter.add_bulk(logical)

        try:
            for _block_id in ids:
                logical += 1
        finally:
            sync_out()
        return logical
