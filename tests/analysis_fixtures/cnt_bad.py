"""Known-bad fused drivers: deferred counters escape the finally block."""


class NoFlushDriver:
    def _run_trace_fused(self, ids, counter):  # EXPECT: CNT001
        logical = 0
        for _block_id in ids:
            logical += 1
        return logical


class UnguardedFlushDriver:
    def _run_trace_fused(self, ids, counter):  # EXPECT: CNT001
        logical = 0
        for _block_id in ids:
            logical += 1
        counter.add_bulk(logical)
        return logical


class WrongClauseDriver:
    def _run_trace_fused(self, ids, counter):  # EXPECT: CNT001
        logical = 0
        try:
            for _block_id in ids:
                logical += 1
        except ValueError:
            counter.add_bulk(logical)
        return logical
