"""Known-good RNG usage: everything flows through repro.utils.rng."""

import numpy as np

from repro.utils.rng import make_rng, spawn_rngs


def draw_seeded(seed):
    rng = make_rng(seed)
    return rng.integers(0, 8)


def draw_streams(seed):
    return spawn_rngs(seed, 4)


def annotation_is_fine(rng: np.random.Generator) -> int:
    # Referencing the type is not constructing a generator.
    return int(rng.integers(0, 8))
