"""Tests for the Block dataclass and payload helpers."""

import numpy as np
import pytest

from repro.memory.block import DUMMY_BLOCK_ID, Block, make_dummy, payload_nbytes


class TestBlock:
    def test_valid_block(self):
        block = Block(block_id=5, leaf=3)
        assert not block.is_dummy
        assert block.payload is None

    def test_dummy_block(self):
        dummy = make_dummy(leaf=2)
        assert dummy.is_dummy
        assert dummy.block_id == DUMMY_BLOCK_ID

    def test_invalid_block_id_rejected(self):
        with pytest.raises(ValueError):
            Block(block_id=-5, leaf=0)

    def test_invalid_leaf_rejected(self):
        with pytest.raises(ValueError):
            Block(block_id=0, leaf=-1)

    def test_copy_copies_numpy_payload(self):
        payload = np.arange(4, dtype=np.float32)
        block = Block(block_id=1, leaf=0, payload=payload)
        clone = block.copy()
        clone.payload[0] = 99.0
        assert block.payload[0] == 0.0

    def test_copy_preserves_metadata(self):
        block = Block(block_id=7, leaf=9, payload=b"abc")
        clone = block.copy()
        assert clone.block_id == 7
        assert clone.leaf == 9


class TestPayloadNbytes:
    def test_none_payload_uses_default(self):
        assert payload_nbytes(None, 128) == 128

    def test_numpy_payload_reports_true_size(self):
        payload = np.zeros(16, dtype=np.float32)
        assert payload_nbytes(payload, 128) == 64

    def test_bytes_payload_uses_len(self):
        assert payload_nbytes(b"12345", 128) == 5

    def test_other_objects_fall_back_to_default(self):
        assert payload_nbytes({"a": 1}, 64) == 64
