"""Tests for superblock bins and the lookahead plan."""

import numpy as np
import pytest

from repro.core.superblock import LookaheadPlan, SuperblockBin


def make_plan():
    bins = [
        SuperblockBin(bin_id=0, start_index=0, block_ids=(5, 7, 5, 9), leaf=3),
        SuperblockBin(bin_id=1, start_index=4, block_ids=(2, 5, 11, 7), leaf=6),
        SuperblockBin(bin_id=2, start_index=8, block_ids=(9, 9), leaf=1),
    ]
    return LookaheadPlan(bins, num_leaves=16)


class TestSuperblockBin:
    def test_end_index(self):
        sb = SuperblockBin(0, start_index=4, block_ids=(1, 2, 3), leaf=0)
        assert sb.end_index == 6

    def test_unique_block_ids_preserve_order(self):
        sb = SuperblockBin(0, 0, block_ids=(5, 7, 5, 9), leaf=0)
        assert sb.unique_block_ids == (5, 7, 9)

    def test_len_counts_accesses_not_unique_blocks(self):
        sb = SuperblockBin(0, 0, block_ids=(5, 5, 5), leaf=0)
        assert len(sb) == 3


class TestLookaheadPlan:
    def test_num_accesses(self):
        assert make_plan().num_accesses == 10

    def test_iteration_and_len(self):
        plan = make_plan()
        assert len(plan) == 3
        assert [sb.bin_id for sb in plan] == [0, 1, 2]

    def test_next_leaf_finds_following_occurrence(self):
        plan = make_plan()
        # Block 5 occurs at indices 0, 2 (bin 0) and 5 (bin 1).
        assert plan.next_leaf(5, after_index=-1) == 3
        assert plan.next_leaf(5, after_index=2) == 6
        assert plan.next_leaf(5, after_index=5) is None

    def test_next_leaf_for_unknown_block(self):
        assert make_plan().next_leaf(999, after_index=-1) is None

    def test_consume_next_leaf_uses_each_occurrence_once(self):
        plan = make_plan()
        # Block 5 occurs at indices 0 and 2 (bin 0, leaf 3) and 5 (bin 1, leaf 6).
        assert plan.consume_next_leaf(5, after_index=-1) == 3
        # Subsequent reassignments move on to later occurrences even though
        # after_index has not advanced.
        assert plan.consume_next_leaf(5, after_index=-1) == 3  # index 2, same bin
        assert plan.consume_next_leaf(5, after_index=-1) == 6  # index 5, bin 1
        assert plan.consume_next_leaf(5, after_index=-1) is None

    def test_consume_does_not_affect_pure_lookup(self):
        plan = make_plan()
        plan.consume_next_leaf(5, after_index=-1)
        assert plan.next_leaf(5, after_index=-1) == 3

    def test_occurrences(self):
        plan = make_plan()
        assert plan.occurrences(9) == [3, 8, 9]
        assert plan.occurrences(123) == []

    def test_metadata_bytes_derives_from_widths(self):
        # Ids fit one byte (max id 11) and so do the 16 leaves: 2 bytes/access.
        assert make_plan().metadata_bytes() == 2 * 10
        # A wide tree needs wider path fields: 2^20 leaves -> 3 leaf bytes.
        wide = LookaheadPlan(
            [SuperblockBin(0, 0, block_ids=(70_000, 2), leaf=9)],
            num_leaves=1 << 20,
        )
        assert wide.metadata_bytes() == 2 * (3 + 3)

    def test_invalid_num_leaves_rejected(self):
        with pytest.raises(ValueError):
            LookaheadPlan([], num_leaves=1)


class TestFromArrays:
    def test_matches_classic_construction(self):
        addresses = np.asarray([5, 7, 5, 9, 2, 5, 11, 7, 9, 9], dtype=np.int64)
        leaves = np.asarray([3, 6, 1], dtype=np.int64)
        plan = LookaheadPlan.from_arrays(
            addresses, leaves, superblock_size=4, num_leaves=16
        )
        classic = make_plan()
        assert plan.bins == classic.bins
        assert plan.num_accesses == classic.num_accesses
        for block_id in (2, 5, 7, 9, 11, 123):
            assert plan.occurrences(block_id) == classic.occurrences(block_id)
            for after in (-1, 0, 3, 9):
                assert plan.next_leaf(block_id, after) == classic.next_leaf(
                    block_id, after
                )

    def test_iter_bin_arrays_matches_bins(self):
        addresses = np.arange(10, dtype=np.int64)
        leaves = np.asarray([4, 2, 7], dtype=np.int64)
        plan = LookaheadPlan.from_arrays(
            addresses, leaves, superblock_size=4, num_leaves=8, start_index=50
        )
        seen = [
            (start, tuple(ids.tolist()), leaf)
            for start, ids, leaf in plan.iter_bin_arrays()
        ]
        assert seen == [
            (sb.start_index, sb.block_ids, sb.leaf) for sb in plan.bins
        ]

    def test_bin_leaf_count_must_match(self):
        with pytest.raises(ValueError):
            LookaheadPlan.from_arrays(
                np.arange(10), np.asarray([1]), superblock_size=4, num_leaves=8
            )

    def test_initial_leaves_and_consume_first_occurrences(self):
        plan = make_plan()
        init = plan.initial_leaves(16)
        assert init[5] == 3  # first occurrence in bin 0
        assert init[2] == 6  # first occurrence in bin 1
        assert init[0] == -1  # never planned
        plan.consume_first_occurrences(16)
        # Block 5's occurrence 0 (index 0, leaf 3) is spent: the next
        # reassignment moves on to index 2 (still bin 0) then bin 1.
        assert plan.consume_next_leaf(5, after_index=-1) == 3  # index 2
        assert plan.consume_next_leaf(5, after_index=-1) == 6  # index 5
        # Block 9's occurrences are 3, 8, 9; occurrence 3 was consumed.
        assert plan.consume_next_leaf(9, after_index=-1) == 1
