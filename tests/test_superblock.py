"""Tests for superblock bins and the lookahead plan."""

import pytest

from repro.core.superblock import LookaheadPlan, SuperblockBin


def make_plan():
    bins = [
        SuperblockBin(bin_id=0, start_index=0, block_ids=(5, 7, 5, 9), leaf=3),
        SuperblockBin(bin_id=1, start_index=4, block_ids=(2, 5, 11, 7), leaf=6),
        SuperblockBin(bin_id=2, start_index=8, block_ids=(9, 9), leaf=1),
    ]
    return LookaheadPlan(bins, num_leaves=16)


class TestSuperblockBin:
    def test_end_index(self):
        sb = SuperblockBin(0, start_index=4, block_ids=(1, 2, 3), leaf=0)
        assert sb.end_index == 6

    def test_unique_block_ids_preserve_order(self):
        sb = SuperblockBin(0, 0, block_ids=(5, 7, 5, 9), leaf=0)
        assert sb.unique_block_ids == (5, 7, 9)

    def test_len_counts_accesses_not_unique_blocks(self):
        sb = SuperblockBin(0, 0, block_ids=(5, 5, 5), leaf=0)
        assert len(sb) == 3


class TestLookaheadPlan:
    def test_num_accesses(self):
        assert make_plan().num_accesses == 10

    def test_iteration_and_len(self):
        plan = make_plan()
        assert len(plan) == 3
        assert [sb.bin_id for sb in plan] == [0, 1, 2]

    def test_next_leaf_finds_following_occurrence(self):
        plan = make_plan()
        # Block 5 occurs at indices 0, 2 (bin 0) and 5 (bin 1).
        assert plan.next_leaf(5, after_index=-1) == 3
        assert plan.next_leaf(5, after_index=2) == 6
        assert plan.next_leaf(5, after_index=5) is None

    def test_next_leaf_for_unknown_block(self):
        assert make_plan().next_leaf(999, after_index=-1) is None

    def test_consume_next_leaf_uses_each_occurrence_once(self):
        plan = make_plan()
        # Block 5 occurs at indices 0 and 2 (bin 0, leaf 3) and 5 (bin 1, leaf 6).
        assert plan.consume_next_leaf(5, after_index=-1) == 3
        # Subsequent reassignments move on to later occurrences even though
        # after_index has not advanced.
        assert plan.consume_next_leaf(5, after_index=-1) == 3  # index 2, same bin
        assert plan.consume_next_leaf(5, after_index=-1) == 6  # index 5, bin 1
        assert plan.consume_next_leaf(5, after_index=-1) is None

    def test_consume_does_not_affect_pure_lookup(self):
        plan = make_plan()
        plan.consume_next_leaf(5, after_index=-1)
        assert plan.next_leaf(5, after_index=-1) == 3

    def test_occurrences(self):
        plan = make_plan()
        assert plan.occurrences(9) == [3, 8, 9]
        assert plan.occurrences(123) == []

    def test_metadata_bytes_scales_with_accesses(self):
        assert make_plan().metadata_bytes() == 12 * 10

    def test_invalid_num_leaves_rejected(self):
        with pytest.raises(ValueError):
            LookaheadPlan([], num_leaves=1)
