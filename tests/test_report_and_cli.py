"""Tests for report rendering and the command-line interface."""

import pytest

from repro.cli import build_parser, main, run_command
from repro.experiments import report
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.memory_neutral import run_memory_neutral
from repro.experiments.scale import ExperimentScale
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

_FAST = ExperimentScale(name="cli-test", num_blocks=256, num_accesses=512)


class TestFormatting:
    def test_format_table_aligns_columns(self):
        text = report.format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_render_figure7(self):
        text = report.render_figure7(run_figure7("7e", _FAST))
        assert "PathORAM" in text
        assert "Fat/S8" in text
        assert "x" in text

    def test_render_figure8(self):
        text = report.render_figure8(run_figure8(_FAST))
        assert "Normal-4" in text

    def test_render_figure9(self):
        text = report.render_figure9(run_figure9(_FAST))
        assert "upper bound" in text

    def test_render_table1(self):
        text = report.render_table1(run_table1())
        assert "8M" in text
        assert "GiB" in text

    def test_render_table2(self):
        text = report.render_table2(run_table2(_FAST))
        assert "permutation" in text

    def test_render_memory_neutral(self):
        text = report.render_memory_neutral(run_memory_neutral(_FAST))
        assert "memory saving" in text

    def test_render_speedup_summary(self):
        text = report.render_speedup_summary(
            {"kaggle": {"PathORAM": 1.0, "Fat/S4": 3.0}}
        )
        assert "kaggle" in text
        assert "3.00x" in text


class TestCLI:
    def test_parser_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "Table I" in captured.out

    def test_figure2_command(self, capsys):
        assert main(["figure2", "--accesses", "2000"]) == 0
        assert "hot band" in capsys.readouterr().out

    def test_figure7_command_tiny(self, capsys):
        assert main(["figure7", "--subfigure", "7e", "--scale", "tiny"]) == 0
        assert "speedups over PathORAM" in capsys.readouterr().out

    def test_run_command_rejects_unknown(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        args.command = "bogus"
        with pytest.raises(ValueError):
            run_command(args)
