"""Tests for LAORAMConfig and the two-stage pipeline model."""

import pytest

from repro.core.config import LAORAMConfig
from repro.core.pipeline import TrainingPipeline
from repro.exceptions import ConfigurationError
from repro.oram.config import ORAMConfig


class TestLAORAMConfig:
    def test_describe_notation(self):
        oram = ORAMConfig(num_blocks=64)
        assert LAORAMConfig(oram=oram, superblock_size=2).describe() == "Normal/S2"
        fat = ORAMConfig(num_blocks=64, fat_tree=True)
        assert LAORAMConfig(oram=fat, superblock_size=8).describe() == "Fat/S8"

    def test_degenerate_pathoram(self):
        config = LAORAMConfig(oram=ORAMConfig(num_blocks=64), superblock_size=1)
        assert config.is_degenerate_pathoram

    def test_invalid_superblock_size(self):
        with pytest.raises(ConfigurationError):
            LAORAMConfig(oram=ORAMConfig(num_blocks=64), superblock_size=0)

    def test_lookahead_window_must_cover_a_superblock(self):
        with pytest.raises(ConfigurationError):
            LAORAMConfig(
                oram=ORAMConfig(num_blocks=64), superblock_size=8, lookahead_accesses=4
            )


class TestTrainingPipeline:
    def test_preprocessing_off_critical_path_by_default(self):
        """Section VIII-A: preprocessing is much faster than training."""
        pipeline = TrainingPipeline()
        estimate = pipeline.estimate(num_samples=10_000)
        assert not estimate.preprocessing_on_critical_path
        assert estimate.overhead_fraction < 0.01

    def test_slow_preprocessing_becomes_bottleneck(self):
        pipeline = TrainingPipeline(
            preprocess_time_per_sample_s=1e-2, train_time_per_sample_s=1e-4
        )
        estimate = pipeline.estimate(num_samples=1_000)
        assert estimate.preprocessing_on_critical_path
        assert estimate.total_time_s > estimate.training_time_s

    def test_total_time_at_least_training_time(self):
        pipeline = TrainingPipeline()
        estimate = pipeline.estimate(num_samples=5_000)
        assert estimate.total_time_s >= estimate.training_time_s

    def test_zero_samples(self):
        estimate = TrainingPipeline().estimate(0)
        assert estimate.total_time_s == 0.0

    def test_crossover_point(self):
        pipeline = TrainingPipeline(train_time_per_sample_s=2e-4)
        assert pipeline.crossover_preprocess_time_s() == pytest.approx(2e-4)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainingPipeline(batch_size=0)
        with pytest.raises(ConfigurationError):
            TrainingPipeline(preprocess_time_per_sample_s=-1.0)
        with pytest.raises(ConfigurationError):
            TrainingPipeline().estimate(-1)
