#!/usr/bin/env python
"""DLRM training with the large embedding table protected by LAORAM.

The scenario from the paper's introduction: a recommendation model (DLRM)
trains on click-through data whose categorical features index an embedding
table; the table lives in untrusted CPU memory, so the row addresses must be
hidden.  This example trains a small DLRM on a synthetic Criteo-style
dataset twice — once with the largest table behind PathORAM and once behind
LAORAM — and reports both the learning metrics (identical data in, identical
learning out) and the memory-access cost (where LAORAM wins).

Run with ``python examples/dlrm_kaggle_training.py``.
"""

from __future__ import annotations

from repro import LAORAMClient, LAORAMConfig, ORAMConfig, PathORAM
from repro.datasets import SyntheticCriteoDataset
from repro.embedding import (
    DLRMModel,
    EmbeddingTable,
    ObliviousEmbeddingTrainer,
    SecureEmbeddingStore,
)

PROTECTED_ROWS = 2048
EMBEDDING_DIM = 16
NUM_SAMPLES = 256
BATCH_SIZE = 32


def train_once(engine_name: str) -> None:
    dataset = SyntheticCriteoDataset(
        num_samples=NUM_SAMPLES, largest_table_rows=PROTECTED_ROWS, seed=7
    )
    oram_config = ORAMConfig(
        num_blocks=PROTECTED_ROWS, block_size_bytes=EMBEDDING_DIM * 4, seed=11
    )
    if engine_name == "LAORAM":
        engine = LAORAMClient(
            LAORAMConfig(
                oram=oram_config.with_overrides(fat_tree=True), superblock_size=8
            )
        )
    else:
        engine = PathORAM(oram_config)

    table = EmbeddingTable(PROTECTED_ROWS, EMBEDDING_DIM, seed=3)
    store = SecureEmbeddingStore(engine, table)
    model = DLRMModel(
        num_dense_features=13,
        small_table_sizes=dataset.table_sizes[:-1],
        embedding_dim=EMBEDDING_DIM,
        seed=0,
    )
    trainer = ObliviousEmbeddingTrainer(store)
    report = trainer.train_dlrm_epoch(model, dataset, batch_size=BATCH_SIZE)

    print(f"\n=== {engine_name} ===")
    print(f"training loss:            {report.mean_loss:.4f}")
    print(f"training accuracy:        {report.accuracy:.2%}")
    print(f"embedding rows accessed:  {report.embedding_accesses}")
    print(f"ORAM path fetches:        {report.path_reads}")
    print(f"dummy fetches:            {report.dummy_reads}")
    print(f"simulated access time:    {report.simulated_time_s * 1e3:.2f} ms")


def main() -> None:
    print(
        "Training a small DLRM on synthetic Criteo data; the largest embedding\n"
        f"table ({PROTECTED_ROWS} rows) is served through an ORAM engine."
    )
    train_once("PathORAM")
    train_once("LAORAM")
    print(
        "\nThe two runs see identical embedding data, so the learning metrics\n"
        "match; LAORAM needs a fraction of the path fetches because the\n"
        "preprocessor coalesces each minibatch's rows onto shared paths."
    )


if __name__ == "__main__":
    main()
