#!/usr/bin/env python
"""Attack demonstration: what a curious OS learns with and without LAORAM.

Section I-A of the paper describes the attack: a curious OS marks the
embedding-table pages not-present so every lookup faults (revealing the
page), then refines the observation to cache-line granularity with
flush+reload — recovering exactly which embedding rows (i.e. which user
categories) were accessed.  This script runs that adversary against

* an unprotected embedding table — the category histogram is recovered
  perfectly; and
* the same workload through LAORAM — the adversary sees only uniformly
  distributed tree paths carrying (essentially) no information.

Run with ``python examples/attack_demo.py``.
"""

from __future__ import annotations


from repro import InsecureMemory, LAORAMClient, LAORAMConfig, ORAMConfig
from repro.attacks import (
    CuriousOSObserver,
    MemoryBusObserver,
    analyze_address_leakage,
    analyze_path_obliviousness,
    recover_access_histogram,
)
from repro.datasets import SyntheticKaggleTrace

NUM_CATEGORIES = 512
ROW_BYTES = 128
NUM_ACCESSES = 4_000

#: Human-readable names for the hottest categories (the paper's Fig. 1 story).
CATEGORY_NAMES = {0: "comedy", 1: "politics", 2: "thriller", 3: "maps", 4: "arts"}


def main() -> None:
    trace = SyntheticKaggleTrace(
        num_blocks=NUM_CATEGORIES, hot_band_size=5, hot_fraction=0.4, seed=2
    ).generate(NUM_ACCESSES)
    true_addresses = trace.addresses.tolist()

    # ------------------------------------------------------------------
    # 1. No protection: the curious OS recovers every accessed row.
    # ------------------------------------------------------------------
    curious_os = CuriousOSObserver(block_size_bytes=ROW_BYTES, cache_line_bytes=ROW_BYTES)
    insecure = InsecureMemory(
        ORAMConfig(num_blocks=NUM_CATEGORIES, block_size_bytes=ROW_BYTES),
        observer=curious_os,
    )
    insecure.access_many(trace.addresses)
    recovered = curious_os.recovered_block_ids()
    leakage = analyze_address_leakage(true_addresses, recovered)
    histogram = recover_access_histogram(recovered)
    top = sorted(histogram.items(), key=lambda item: -item[1])[:5]

    print("=== Unprotected embedding table ===")
    print(f"adversary observations:      {len(recovered)} cache-line addresses")
    print(f"exact rows recovered:        {leakage.top1_recovery_rate:.0%} of accesses")
    print(f"leaked information:          {leakage.leakage_fraction:.0%} of the stream's entropy")
    print("recovered user interests (top categories):")
    for category, count in top:
        name = CATEGORY_NAMES.get(category, f"category {category}")
        print(f"    {name:<12} accessed {count} times")

    # ------------------------------------------------------------------
    # 2. Same workload through LAORAM: only uniform paths are visible.
    # ------------------------------------------------------------------
    bus_observer = MemoryBusObserver()
    laoram = LAORAMClient(
        LAORAMConfig(
            oram=ORAMConfig(
                num_blocks=NUM_CATEGORIES, block_size_bytes=ROW_BYTES, fat_tree=True, seed=6
            ),
            superblock_size=4,
        ),
        observer=bus_observer,
    )
    laoram.run_trace(trace.addresses)
    report = analyze_path_obliviousness(
        true_addresses, bus_observer.observed_paths, num_leaves=laoram.config.num_leaves
    )

    print("\n=== Same workload through LAORAM ===")
    print(f"adversary observations:      {report.num_observations} tree-path fetches")
    print(
        "path uniformity (chi-square): "
        + ("PASS (indistinguishable from uniform)" if not report.uniformity.rejects_uniformity() else "FAIL")
    )
    print(f"information about accesses:  {report.mutual_information_bits:.3f} bits (estimation noise)")
    print(f"verdict:                     {'oblivious' if report.looks_oblivious else 'LEAKING'}")
    print(
        "\nThe adversary no longer learns which categories the user's samples"
        "\ntouched — every fetch is a uniformly random path of the ORAM tree."
    )


if __name__ == "__main__":
    main()
