#!/usr/bin/env python
"""Quickstart: protect an embedding-table access stream with LAORAM.

This script walks through the core public API in a few steps:

1. build a PathORAM baseline and a LAORAM client (fat tree, superblock 4)
   over the same 4096-row embedding table;
2. generate a synthetic DLRM-Kaggle style access trace;
3. run the trace through both engines;
4. compare path fetches, bytes moved and simulated access latency.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import LAORAMClient, LAORAMConfig, ORAMConfig, PathORAM
from repro.datasets import SyntheticKaggleTrace
from repro.utils.units import format_bytes, format_duration

NUM_ROWS = 4096
ROW_BYTES = 128
NUM_ACCESSES = 10_000


def main() -> None:
    # 1. The tree geometry shared by both engines: 4096 embedding rows of
    #    128 bytes, bucket size 4 (the paper's default).
    oram_config = ORAMConfig(
        num_blocks=NUM_ROWS, block_size_bytes=ROW_BYTES, bucket_size=4, seed=1
    )

    baseline = PathORAM(oram_config)
    laoram = LAORAMClient(
        LAORAMConfig(
            oram=oram_config.with_overrides(fat_tree=True, seed=2),
            superblock_size=4,
        )
    )

    # 2. A Kaggle-like access stream: mostly random rows plus a small hot band.
    trace = SyntheticKaggleTrace(num_blocks=NUM_ROWS, hot_band_size=64, seed=3).generate(
        NUM_ACCESSES
    )
    print(f"workload: {len(trace)} accesses over {trace.num_blocks} embedding rows")

    # 3. Drive both engines.  PathORAM performs one oblivious access per
    #    trace element; LAORAM preprocesses the trace into superblocks and
    #    fetches each superblock's path once.
    baseline.access_many(trace.addresses)
    laoram.run_trace(trace.addresses)

    # 4. Compare.
    print(f"\n{'metric':<32}{'PathORAM':>16}{'LAORAM Fat/S4':>16}")
    rows = [
        ("path fetches (real)", baseline.statistics.path_reads, laoram.statistics.path_reads),
        ("dummy fetches", baseline.statistics.dummy_reads, laoram.statistics.dummy_reads),
        ("bytes moved", format_bytes(baseline.statistics.total_bytes), format_bytes(laoram.statistics.total_bytes)),
        ("stash peak (blocks)", baseline.statistics.stash_peak, laoram.statistics.stash_peak),
        ("simulated time", format_duration(baseline.simulated_time_s), format_duration(laoram.simulated_time_s)),
        ("server memory", format_bytes(baseline.server_memory_bytes), format_bytes(laoram.server_memory_bytes)),
    ]
    for name, base_value, laoram_value in rows:
        print(f"{name:<32}{str(base_value):>16}{str(laoram_value):>16}")

    speedup = (baseline.simulated_time_s / len(trace)) / (
        laoram.simulated_time_s / len(trace)
    )
    print(f"\nLAORAM speedup over PathORAM: {speedup:.2f}x")
    print("Both engines expose only uniformly random tree paths to the server.")


if __name__ == "__main__":
    main()
