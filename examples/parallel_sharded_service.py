#!/usr/bin/env python
"""Parallel sharded serving: worker processes + asyncio request coalescing.

This script demonstrates the online deployment shape of the reproduction:

1. build a :class:`ShardedRunner` whose shards execute in worker processes,
   each engine's numpy state living in shared-memory segments;
2. verify the process backend is **bit-identical** to the in-process
   sequential backend on the same Zipf trace (same merged traffic snapshot,
   same per-shard position maps read straight out of shared memory);
3. stand up the :class:`AsyncShardedService` front-end and drive it with a
   bursty Zipf request workload — concurrent ``submit()`` calls coalesce
   into batched oblivious accesses per worker;
4. report wall-clock throughput and p50/p95/p99 request latency.

Run with ``python examples/parallel_sharded_service.py``.  Worker count
defaults to 2; pass ``--num-workers 4`` on a machine with cores to spare
(wall-clock scaling needs physical cores — on a 1-2 core box the parallel
backend demonstrates correctness, not speedup).
"""

from __future__ import annotations

import argparse
import asyncio
import time

import numpy as np

from repro.datasets import ZipfTraceGenerator
from repro.experiments.sharded import ShardedRunner
from repro.serving import AsyncShardedService, run_zipf_workload

NUM_BLOCKS = 1 << 14
NUM_SHARDS = 4
NUM_ACCESSES = 20_000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-workers", type=int, default=2)
    parser.add_argument("--requests", type=int, default=300)
    args = parser.parse_args()

    trace = ZipfTraceGenerator(NUM_BLOCKS, exponent=1.1, seed=7).generate(
        NUM_ACCESSES
    )

    # 1-2. Offline replay: sequential vs process-parallel, bit-identical.
    sequential = ShardedRunner(NUM_BLOCKS, NUM_SHARDS, family="laoram", seed=3)
    start = time.perf_counter()
    seq_snapshot = sequential.run_trace(trace.addresses)
    seq_wall = time.perf_counter() - start

    with ShardedRunner(
        NUM_BLOCKS,
        NUM_SHARDS,
        family="laoram",
        seed=3,
        num_workers=args.num_workers,
    ) as parallel:
        start = time.perf_counter()
        par_snapshot = parallel.run_trace(trace.addresses)
        par_wall = time.perf_counter() - start
        maps_match = all(
            np.array_equal(a, b)
            for a, b in zip(sequential.position_maps(), parallel.position_maps())
        )

    print(f"replay: {NUM_ACCESSES} Zipf accesses over {NUM_SHARDS} shards")
    print(f"  sequential backend:          {seq_wall:6.2f}s")
    print(f"  {args.num_workers} worker processes:          {par_wall:6.2f}s")
    print(f"  merged snapshots identical:  {par_snapshot == seq_snapshot}")
    print(f"  position maps identical:     {maps_match}")

    # 3-4. Online serving with request coalescing.
    async def serve() -> None:
        with ShardedRunner(
            NUM_BLOCKS,
            NUM_SHARDS,
            family="laoram",
            seed=3,
            num_workers=args.num_workers,
        ) as runner:
            async with AsyncShardedService(runner) as service:
                report = await run_zipf_workload(
                    service,
                    num_requests=args.requests,
                    request_size=16,
                    arrival="bursty",
                    burst_size=8,
                    rate_rps=1000.0,
                    seed=11,
                )
        latency = report.latency
        print(f"serving: {args.requests} bursty requests x 16 ids")
        print(f"  throughput:        {report.throughput_rps:7.0f} req/s")
        print(
            f"  latency p50/95/99: {latency.p50_ms:.2f} / {latency.p95_ms:.2f} "
            f"/ {latency.p99_ms:.2f} ms"
        )
        print(f"  mean batch size:   {latency.mean_batch_size:.1f} ids")

    asyncio.run(serve())


if __name__ == "__main__":
    main()
