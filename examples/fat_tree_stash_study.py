#!/usr/bin/env python
"""Fat-tree stash study: reproduce Figures 8/9-style results interactively.

Superblocks put pressure on the client stash because several blocks suddenly
want to live on the same path (Section V of the paper).  This example runs
the worst-case permutation workload with background eviction disabled and
plots (as ASCII) how the stash grows for the normal tree versus the fat
tree, then reruns with eviction enabled to show the dummy-read cost.

Run with ``python examples/fat_tree_stash_study.py``.
"""

from __future__ import annotations

from repro import EvictionPolicy, LAORAMClient, LAORAMConfig, ORAMConfig
from repro.datasets import PermutationTraceGenerator
from repro.memory import TrafficCounter

NUM_ROWS = 2048
NUM_ACCESSES = 6_000
SUPERBLOCK = 8


def run(label: str, fat: bool, eviction: EvictionPolicy) -> tuple[list[int], float]:
    counter = TrafficCounter(record_stash_history=True)
    client = LAORAMClient(
        LAORAMConfig(
            oram=ORAMConfig(
                num_blocks=NUM_ROWS, block_size_bytes=128, fat_tree=fat, seed=4
            ),
            superblock_size=SUPERBLOCK,
        ),
        counter=counter,
        eviction=eviction,
    )
    trace = PermutationTraceGenerator(NUM_ROWS, seed=5).generate(NUM_ACCESSES)
    client.run_trace(trace.addresses)
    return counter.stash_history, counter.snapshot().dummy_reads_per_access


def ascii_plot(histories: dict[str, list[int]], width: int = 60, height: int = 12) -> str:
    """Tiny ASCII line chart of stash occupancy over accesses."""
    peak = max(max(history) for history in histories.values()) or 1
    lines = []
    markers = {label: marker for label, marker in zip(histories, "*o+x")}
    for row in range(height, 0, -1):
        threshold = peak * row / height
        line = []
        for column in range(width):
            cell = " "
            for label, history in histories.items():
                index = min(len(history) - 1, int(column * len(history) / width))
                if history[index] >= threshold:
                    cell = markers[label]
            line.append(cell)
        lines.append(f"{int(threshold):>6} |" + "".join(line))
    lines.append("       +" + "-" * width)
    legend = "  ".join(f"{marker}={label}" for label, marker in markers.items())
    lines.append(f"        stash occupancy vs. superblock accesses   ({legend})")
    return "\n".join(lines)


def main() -> None:
    print(
        f"Worst-case permutation workload, superblock size {SUPERBLOCK}, "
        "background eviction disabled:\n"
    )
    histories = {}
    for label, fat in (("normal", False), ("fat 8-to-4", True)):
        history, _ = run(label, fat, EvictionPolicy.disabled())
        histories[label] = history
        print(f"  {label:<12} final stash = {history[-1]:>5} blocks")
    print()
    print(ascii_plot(histories))

    print("\nWith background eviction (trigger 500 / drain 50), the stash stays")
    print("bounded and the cost shows up as dummy reads instead:\n")
    for label, fat in (("normal", False), ("fat 8-to-4", True)):
        _, dummy_rate = run(label, fat, EvictionPolicy.paper_default())
        print(f"  {label:<12} dummy reads per access = {dummy_rate:.3f}")
    print(
        "\nThe fat tree absorbs superblock write-backs near the root, so it both"
        "\ngrows the stash more slowly and needs fewer dummy evictions."
    )


if __name__ == "__main__":
    main()
