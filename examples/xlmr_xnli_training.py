#!/usr/bin/env python
"""XLM-R-style NLP training with the token embedding table behind LAORAM.

The paper's second workload: an NLP model whose token embedding table is
trained on the XNLI corpus.  Token ids follow a Zipfian distribution, which
is the friendliest case for LAORAM (few dummy reads, large speedups).  This
example trains a mean-pooled token-embedding classifier on a synthetic XNLI
dataset with the embedding table behind LAORAM and reports learning and
memory-access metrics per epoch.

Run with ``python examples/xlmr_xnli_training.py``.
"""

from __future__ import annotations

from repro import LAORAMClient, LAORAMConfig, ORAMConfig
from repro.datasets import SyntheticXNLIDataset
from repro.embedding import (
    EmbeddingTable,
    ObliviousEmbeddingTrainer,
    SecureEmbeddingStore,
    XLMRClassifier,
)

VOCABULARY = 2048
EMBEDDING_DIM = 16
SEQUENCE_LENGTH = 16
NUM_SAMPLES = 96
EPOCHS = 3


def main() -> None:
    dataset = SyntheticXNLIDataset(
        num_samples=NUM_SAMPLES,
        vocabulary_size=VOCABULARY,
        sequence_length=SEQUENCE_LENGTH,
        seed=5,
    )
    engine = LAORAMClient(
        LAORAMConfig(
            oram=ORAMConfig(
                num_blocks=VOCABULARY, block_size_bytes=EMBEDDING_DIM * 4, fat_tree=True, seed=9
            ),
            superblock_size=8,
        )
    )
    table = EmbeddingTable(VOCABULARY, EMBEDDING_DIM, seed=1)
    store = SecureEmbeddingStore(engine, table)
    model = XLMRClassifier(embedding_dim=EMBEDDING_DIM, num_classes=3, learning_rate=0.2, seed=0)
    trainer = ObliviousEmbeddingTrainer(store)

    print(
        f"Training a token-embedding classifier on {NUM_SAMPLES} synthetic XNLI\n"
        f"samples ({SEQUENCE_LENGTH} tokens each); the {VOCABULARY}-row embedding\n"
        "table is served through LAORAM (Fat/S8).\n"
    )
    print(f"{'epoch':>5}  {'loss':>8}  {'accuracy':>8}  {'path fetches':>12}  {'dummy':>6}")
    previous_reads = 0
    for epoch in range(1, EPOCHS + 1):
        report = trainer.train_xlmr_epoch(model, dataset)
        epoch_reads = report.path_reads - previous_reads
        previous_reads = report.path_reads
        print(
            f"{epoch:>5}  {report.mean_loss:>8.4f}  {report.accuracy:>8.2%}  "
            f"{epoch_reads:>12}  {report.dummy_reads:>6}"
        )

    accesses_per_epoch = NUM_SAMPLES * SEQUENCE_LENGTH * 2  # fetch + write-back
    print(
        f"\nEach epoch performs {accesses_per_epoch} token-embedding accesses"
        f"\n(fetch plus gradient write-back); the final epoch needed only"
        f"\n{epoch_reads} path fetches thanks to lookahead superblocks over the"
        "\nZipf-repeating token stream."
    )


if __name__ == "__main__":
    main()
